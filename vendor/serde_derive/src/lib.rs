//! Offline stub of `serde_derive`.
//!
//! Hand-rolled item parser (no `syn`/`quote`) generating impls of the
//! serde stub's `Serialize`/`Deserialize` traits. Supports the shapes
//! this workspace uses:
//!
//! * structs with named fields,
//! * tuple structs (newtype and wider),
//! * unit structs,
//! * enums with unit, newtype, tuple, and struct variants,
//!
//! using serde's externally-tagged representation for enums. Generics,
//! `#[serde(...)]` attributes, and exotic shapes are intentionally
//! unsupported and fail loudly at compile time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    /// `#[serde(default)]`: absent fields deserialize via `Default`.
    default: bool,
}

#[derive(Debug)]
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: VariantShape,
}

/// Derive the serde stub's `Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated code parses")
}

/// Derive the serde stub's `Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated code parses")
}

// ------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    skip_attrs_and_vis(&mut toks);
    let kw = expect_ident(&mut toks);
    let name = expect_ident(&mut toks);
    if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stub derive does not support generic type `{name}`");
    }
    match kw.as_str() {
        "struct" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("serde stub derive supports struct/enum, got `{other}`"),
    }
}

type TokIter = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// Skip attributes and visibility, returning whether a
/// `#[serde(default)]` attribute was among them.
fn skip_attrs_and_vis(toks: &mut TokIter) -> bool {
    let mut has_default = false;
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.next() {
                    // Attribute body, e.g. `serde(default)` or `doc = ..`.
                    let body = g.stream().to_string().replace(' ', "");
                    if body == "serde(default)" {
                        has_default = true;
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                // pub(crate) / pub(super) path qualifier
                if matches!(toks.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    toks.next();
                }
            }
            _ => return has_default,
        }
    }
}

fn expect_ident(toks: &mut TokIter) -> String {
    match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected identifier, got {other:?}"),
    }
}

/// Parse `name: Type, ...` bodies, returning field names. Types are
/// skipped token-by-token with angle-bracket depth tracking so commas
/// inside generics do not split fields.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut toks = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let default = skip_attrs_and_vis(&mut toks);
        if toks.peek().is_none() {
            return fields;
        }
        fields.push(Field {
            name: expect_ident(&mut toks),
            default,
        });
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field, got {other:?}"),
        }
        skip_type_until_comma(&mut toks);
    }
}

fn skip_type_until_comma(toks: &mut TokIter) {
    let mut depth = 0usize;
    while let Some(tt) = toks.peek() {
        match tt {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                if c == ',' && depth == 0 {
                    toks.next();
                    return;
                }
                if c == '<' {
                    depth += 1;
                } else if c == '>' {
                    depth = depth.saturating_sub(1);
                }
                toks.next();
            }
            _ => {
                toks.next();
            }
        }
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut toks = stream.into_iter().peekable();
    let mut arity = 0usize;
    loop {
        skip_attrs_and_vis(&mut toks);
        if toks.peek().is_none() {
            return arity;
        }
        arity += 1;
        skip_type_until_comma(&mut toks);
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut toks = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut toks);
        if toks.peek().is_none() {
            return variants;
        }
        let name = expect_ident(&mut toks);
        let shape = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                toks.next();
                VariantShape::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                toks.next();
                VariantShape::Named(fields)
            }
            _ => VariantShape::Unit,
        };
        if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!("explicit discriminants unsupported in variant `{name}`");
        }
        if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            toks.next();
        }
        variants.push(Variant { name, shape });
    }
}

// ------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!(
                        "obj.push((\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn to_value(&self) -> ::serde::Value {{\n\
                     let mut obj: Vec<(String, ::serde::Value)> = Vec::new();\n\
                     {pushes}\
                     ::serde::Value::Object(obj)\n\
                   }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
               fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Serialize::to_value(&self.0)\n\
               }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let items: String = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Value::Array(vec![{items}])\n\
                   }}\n\
                 }}"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
               fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),\n"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vn}(x0) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_value(x0))]),\n"
                        ),
                        VariantShape::Tuple(arity) => {
                            let binds: Vec<String> =
                                (0..*arity).map(|i| format!("x{i}")).collect();
                            let items: String = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b}),"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Array(vec![{items}]))]),\n",
                                binds.join(", ")
                            )
                        }
                        VariantShape::Named(fields) => {
                            let binds = fields
                                .iter()
                                .map(|f| f.name.as_str())
                                .collect::<Vec<_>>()
                                .join(", ");
                            let pushes: String = fields
                                .iter()
                                .map(|f| {
                                    let f = &f.name;
                                    format!(
                                        "inner.push((\"{f}\".to_string(), ::serde::Serialize::to_value({f})));\n"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => {{\n\
                                   let mut inner: Vec<(String, ::serde::Value)> = Vec::new();\n\
                                   {pushes}\
                                   ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Object(inner))])\n\
                                 }}\n"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn to_value(&self) -> ::serde::Value {{\n\
                     match self {{\n{arms}}}\n\
                   }}\n\
                 }}"
            )
        }
    }
}

/// Generated initializer for one named field read from object `src`.
fn field_init(f: &Field, src: &str) -> String {
    let name = &f.name;
    let missing = if f.default {
        "::std::default::Default::default()".to_string()
    } else {
        format!("::serde::Deserialize::missing_field(\"{name}\")?")
    };
    format!(
        "{name}: match ::serde::value_get({src}, \"{name}\") {{\n\
           Some(v) => ::serde::Deserialize::from_value(v)?,\n\
           None => {missing},\n\
         }},\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let field_inits: String = fields.iter().map(|f| field_init(f, "obj")).collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                   fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                     let obj = v.as_object().ok_or_else(|| ::serde::DeError::custom(\
                       format!(\"expected object for {name}, got {{v:?}}\")))?;\n\
                     Ok({name} {{\n{field_inits}}})\n\
                   }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
               fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                 Ok({name}(::serde::Deserialize::from_value(v)?))\n\
               }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let elems: String = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                   fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                     match v {{\n\
                       ::serde::Value::Array(items) if items.len() == {arity} =>\n\
                         Ok({name}({elems})),\n\
                       _ => Err(::serde::DeError::custom(\
                         format!(\"expected {arity}-array for {name}, got {{v:?}}\"))),\n\
                     }}\n\
                   }}\n\
                 }}"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
               fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                 match v {{\n\
                   ::serde::Value::Null => Ok({name}),\n\
                   _ => Err(::serde::DeError::custom(\"expected null for {name}\")),\n\
                 }}\n\
               }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0}),\n", v.name))
                .collect();
            let payload_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Tuple(1) => Some(format!(
                            "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(payload)?)),\n"
                        )),
                        VariantShape::Tuple(arity) => {
                            let elems: String = (0..*arity)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&items[{i}])?,")
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => match payload {{\n\
                                   ::serde::Value::Array(items) if items.len() == {arity} =>\n\
                                     Ok({name}::{vn}({elems})),\n\
                                   _ => Err(::serde::DeError::custom(\
                                     \"bad payload for variant {vn}\")),\n\
                                 }},\n"
                            ))
                        }
                        VariantShape::Named(fields) => {
                            let field_inits: String =
                                fields.iter().map(|f| field_init(f, "inner")).collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                   let inner = payload.as_object().ok_or_else(|| \
                                     ::serde::DeError::custom(\"bad payload for variant {vn}\"))?;\n\
                                   Ok({name}::{vn} {{\n{field_inits}}})\n\
                                 }},\n"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                   fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                     match v {{\n\
                       ::serde::Value::String(s) => match s.as_str() {{\n\
                         {unit_arms}\
                         other => Err(::serde::DeError::custom(\
                           format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                       }},\n\
                       ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                         let (tag, payload) = &entries[0];\n\
                         match tag.as_str() {{\n\
                           {payload_arms}\
                           other => Err(::serde::DeError::custom(\
                             format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                         }}\n\
                       }}\n\
                       _ => Err(::serde::DeError::custom(\
                         format!(\"expected variant for {name}, got {{v:?}}\"))),\n\
                     }}\n\
                   }}\n\
                 }}"
            )
        }
    }
}
