//! Offline stub of `rand_distr` implementing the distributions this
//! workspace samples: `Exp`, `LogNormal`, `Weibull`, `Pareto`, `Normal`.
//!
//! All sampling uses inverse-transform (or Box–Muller for the normal),
//! which is exact for these families — only the stream differs from the
//! upstream crate, not the distribution.

use rand::{Rng, RngCore};

/// Construction error for invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamError;

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("invalid distribution parameter")
    }
}

impl std::error::Error for ParamError {}

/// A distribution that can be sampled with any [`Rng`].
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Uniform draw in `(0, 1]` — safe as a log argument.
fn unit_open<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    let u: f64 = rand::Standard::from_rng(rng);
    1.0 - u // (0, 1]
}

/// Exponential distribution with rate `lambda`.
#[derive(Debug, Clone, Copy)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// `lambda` must be positive and finite.
    pub fn new(lambda: f64) -> Result<Self, ParamError> {
        if lambda > 0.0 && lambda.is_finite() {
            Ok(Exp { lambda })
        } else {
            Err(ParamError)
        }
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        -unit_open(rng).ln() / self.lambda
    }
}

/// Normal distribution (Box–Muller).
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// `std_dev` must be non-negative and finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, ParamError> {
        if std_dev >= 0.0 && std_dev.is_finite() && mean.is_finite() {
            Ok(Normal { mean, std_dev })
        } else {
            Err(ParamError)
        }
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u1 = unit_open(rng);
        let u2: f64 = rand::Standard::from_rng(rng);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

/// Log-normal distribution parameterized by the underlying normal.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    /// `sigma` must be non-negative and finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, ParamError> {
        Ok(LogNormal {
            norm: Normal::new(mu, sigma)?,
        })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

/// Weibull distribution with the given scale and shape.
#[derive(Debug, Clone, Copy)]
pub struct Weibull {
    scale: f64,
    inv_shape: f64,
}

impl Weibull {
    /// Both parameters must be positive and finite.
    pub fn new(scale: f64, shape: f64) -> Result<Self, ParamError> {
        if scale > 0.0 && scale.is_finite() && shape > 0.0 && shape.is_finite() {
            Ok(Weibull {
                scale,
                inv_shape: 1.0 / shape,
            })
        } else {
            Err(ParamError)
        }
    }
}

impl Distribution<f64> for Weibull {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.scale * (-unit_open(rng).ln()).powf(self.inv_shape)
    }
}

/// Pareto distribution with minimum `scale` and tail index `alpha`.
#[derive(Debug, Clone, Copy)]
pub struct Pareto {
    scale: f64,
    inv_alpha: f64,
}

impl Pareto {
    /// Both parameters must be positive and finite.
    pub fn new(scale: f64, alpha: f64) -> Result<Self, ParamError> {
        if scale > 0.0 && scale.is_finite() && alpha > 0.0 && alpha.is_finite() {
            Ok(Pareto {
                scale,
                inv_alpha: 1.0 / alpha,
            })
        } else {
            Err(ParamError)
        }
    }
}

impl Distribution<f64> for Pareto {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.scale * unit_open(rng).powf(-self.inv_alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean_of(d: &impl Distribution<f64>, n: usize) -> f64 {
        let mut rng = StdRng::seed_from_u64(11);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn exp_mean() {
        let d = Exp::new(0.25).unwrap();
        assert!((mean_of(&d, 100_000) - 4.0).abs() < 0.1);
    }

    #[test]
    fn normal_mean() {
        let d = Normal::new(3.0, 2.0).unwrap();
        assert!((mean_of(&d, 100_000) - 3.0).abs() < 0.05);
    }

    #[test]
    fn lognormal_mean() {
        let d = LogNormal::new(1.0, 0.5).unwrap();
        let theory = (1.0f64 + 0.125).exp();
        assert!((mean_of(&d, 200_000) - theory).abs() / theory < 0.03);
    }

    #[test]
    fn weibull_positive() {
        let d = Weibull::new(3.0, 1.5).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn pareto_above_scale() {
        let d = Pareto::new(2.0, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) >= 2.0);
        }
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(Exp::new(0.0).is_err());
        assert!(Weibull::new(-1.0, 1.0).is_err());
        assert!(Pareto::new(1.0, f64::NAN).is_err());
    }
}
