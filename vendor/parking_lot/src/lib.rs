//! Offline stub of `parking_lot`, backed by `std::sync` primitives.
//!
//! Implements the subset of the API this workspace uses: `RwLock` and
//! `Mutex` whose guards are acquired infallibly (poisoning is ignored —
//! a panic while holding a lock propagates to the joining thread anyway).

use std::sync;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Reader–writer lock with the parking_lot (non-poisoning) API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock.
    pub fn new(t: T) -> Self {
        RwLock(sync::RwLock::new(t))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        self.0.try_read().ok()
    }

    /// Try to acquire a write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        self.0.try_write().ok()
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Mutex with the parking_lot (non-poisoning) API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(t: T) -> Self {
        Mutex(sync::Mutex::new(t))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
    }
}
