//! Offline stub of `proptest` for this workspace.
//!
//! Implements the subset the test suites use: the `proptest!` macro,
//! `prop_assert*` macros, `any::<T>()`, range strategies, tuple
//! strategies, `prop_map`, `prop::collection::{vec, btree_set,
//! btree_map}`, simple `"[class]{lo,hi}"` string patterns, and
//! `ProptestConfig::with_cases`.
//!
//! Differences from upstream: generation is derived from a fixed
//! deterministic seed schedule (failures reproduce exactly across runs)
//! and there is **no shrinking** — a failing case reports its inputs via
//! the panic message instead.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

/// Deterministic generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded constructor.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x5DEECE66D,
        }
    }

    /// Next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// Error carried by `prop_assert!` failures.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Construct a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values.
pub trait Strategy {
    /// Generated type.
    type Value;

    /// Produce one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Strategy yielding a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Marker for `any::<T>()` support.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over the full domain of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

/// The `any::<T>()` strategy constructor.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-balanced, wide dynamic range.
        let m = rng.unit_f64() * 2.0 - 1.0;
        let e = (rng.below(61) as i32) - 30;
        m * (2.0f64).powi(e)
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
range_strategy_float!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.new_value(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// `"[class]{lo,hi}"` string patterns (the only regex shape used here).
impl Strategy for &str {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        let (class, lo, hi) = parse_simple_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string pattern `{self}`"));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| class[rng.below(class.len() as u64) as usize])
            .collect()
    }
}

/// Parse `[a-zA-Z0-9_]{lo,hi}`-shaped patterns into (alphabet, lo, hi).
fn parse_simple_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let (class_part, counts) = rest.split_once(']')?;
    let counts = counts.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match counts.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    let mut alphabet = Vec::new();
    let chars: Vec<char> = class_part.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (a, b) = (chars[i], chars[i + 2]);
            for c in a..=b {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() || lo > hi {
        return None;
    }
    Some((alphabet, lo, hi))
}

/// Collection strategies under the `prop::collection` path.
pub mod prop {
    /// Container strategies.
    pub mod collection {
        use super::super::*;

        /// Strategy for `Vec<S::Value>` with length drawn from `len`.
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// Vector of values from `element`, length in `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.len.new_value(rng);
                (0..n).map(|_| self.element.new_value(rng)).collect()
            }
        }

        /// Strategy for ordered sets (size best-effort under duplicates).
        pub struct BTreeSetStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// Ordered set of values from `element`, size in `size`.
        pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
        where
            S::Value: Ord,
        {
            BTreeSetStrategy { element, size }
        }

        impl<S: Strategy> Strategy for BTreeSetStrategy<S>
        where
            S::Value: Ord,
        {
            type Value = BTreeSet<S::Value>;

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let target = self.size.new_value(rng);
                let mut out = BTreeSet::new();
                // Bounded attempts: duplicate draws may keep the set
                // smaller than `target`, as upstream proptest allows.
                for _ in 0..target * 4 {
                    if out.len() >= target {
                        break;
                    }
                    out.insert(self.element.new_value(rng));
                }
                out
            }
        }

        /// Strategy for ordered maps.
        pub struct BTreeMapStrategy<K, V> {
            key: K,
            value: V,
            size: Range<usize>,
        }

        /// Ordered map with keys from `key`, values from `value`.
        pub fn btree_map<K: Strategy, V: Strategy>(
            key: K,
            value: V,
            size: Range<usize>,
        ) -> BTreeMapStrategy<K, V>
        where
            K::Value: Ord,
        {
            BTreeMapStrategy { key, value, size }
        }

        impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
        where
            K::Value: Ord,
        {
            type Value = BTreeMap<K::Value, V::Value>;

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let target = self.size.new_value(rng);
                let mut out = BTreeMap::new();
                for _ in 0..target * 4 {
                    if out.len() >= target {
                        break;
                    }
                    out.insert(self.key.new_value(rng), self.value.new_value(rng));
                }
                out
            }
        }
    }
}

/// Everything the test files import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestRng,
    };
}

/// Assert a condition inside a property, failing the case (not panicking
/// the generator loop) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a), stringify!($b), a
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

/// Declare property tests. Each `fn name(binding in strategy, ...) { .. }`
/// becomes a `#[test]` running the body over `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    // Internal: fully-dispatched form (must be the first arm so the
    // catch-all below cannot re-match it and recurse).
    (@cfg ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    // Distinct deterministic seed per test and case.
                    let mut seed = 0xcbf29ce484222325u64;
                    for b in concat!(module_path!(), "::", stringify!($name)).bytes() {
                        seed = (seed ^ b as u64).wrapping_mul(0x100000001b3);
                    }
                    let mut rng = $crate::TestRng::new(seed ^ (case as u64).wrapping_mul(0x9E3779B97F4A7C15));
                    $(let $pat = $crate::Strategy::new_value(&$strat, &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        Ok(())
                    })();
                    if let Err(e) = outcome {
                        panic!("property `{}` failed on case {}: {}", stringify!($name), case, e.0);
                    }
                }
            }
        )*
    };
    // With a leading config attribute.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    // Without: use the default config.
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn pattern_parser() {
        let (alpha, lo, hi) = super::parse_simple_pattern("[a-z]{1,12}").unwrap();
        assert_eq!(alpha.len(), 26);
        assert_eq!((lo, hi), (1, 12));
        let (alpha, lo, hi) = super::parse_simple_pattern("[ab_]{3}").unwrap();
        assert_eq!(alpha, vec!['a', 'b', '_']);
        assert_eq!((lo, hi), (3, 3));
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 5u64..10, f in -1.0f64..1.0, s in "[a-z]{1,12}") {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
            prop_assert!(!s.is_empty() && s.len() <= 12);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }

        #[test]
        fn collections_and_maps(
            v in prop::collection::vec(0u32..100, 1..20),
            m in prop::collection::btree_map("[a-z]{1,4}", 0u8..10, 0..8),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&x| x < 100));
            prop_assert!(m.len() < 8);
        }

        #[test]
        fn tuples_and_maps((a, b) in (0u8..4, any::<bool>()).prop_map(|(a, b)| (a * 2, b))) {
            prop_assert!(a % 2 == 0 && a < 8);
            let _ = b;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_applies(x in 0u64..1000) {
            prop_assert!(x < 1000);
        }
    }
}
